package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRCCharging(t *testing.T) {
	// A step through R into C charges as v = V(1 - e^{-t/RC}).
	c := New(Params100nm)
	src := c.Node("src")
	out := c.Node("out")
	c.V(src, Step(0, 1.0, 10, 0.1))
	c.R(src, out, 10) // 10 kΩ
	c.C(out, Gnd, 10) // 10 fF → τ = 100 ps
	res := c.Simulate(600, 0.05)

	for _, tc := range []struct{ t, want float64 }{
		{110, 1 - math.Exp(-1)},
		{210, 1 - math.Exp(-2)},
		{510, 1 - math.Exp(-5)},
	} {
		got := res.Voltage(out, tc.t)
		if math.Abs(got-tc.want) > 0.01 {
			t.Errorf("v(%gps) = %.4f, want %.4f", tc.t, got, tc.want)
		}
	}
}

func TestResistorDivider(t *testing.T) {
	// DC divider settles to V·R2/(R1+R2).
	c := New(Params100nm)
	src := c.Node("src")
	mid := c.Node("mid")
	c.V(src, DC(1.2))
	c.R(src, mid, 10)
	c.R(mid, Gnd, 30)
	c.C(mid, Gnd, 1) // small cap so the node has dynamics
	res := c.Simulate(200, 0.1)
	if got, want := res.FinalVoltage(mid), 0.9; math.Abs(got-want) > 1e-3 {
		t.Errorf("divider = %v, want %v", got, want)
	}
}

func TestInverterStatic(t *testing.T) {
	// With a DC low input the inverter output settles to VDD; with a DC
	// high input it settles to ~0.
	for _, tc := range []struct {
		in   float64
		want float64
	}{
		{0, Params100nm.VDD},
		{Params100nm.VDD, 0},
	} {
		c := New(Params100nm)
		vdd := c.VDDNode()
		in := c.Node("in")
		out := c.Node("out")
		c.V(in, DC(tc.in))
		c.Inverter(vdd, in, out, 1)
		res := c.Simulate(500, 0.1)
		if got := res.FinalVoltage(out); math.Abs(got-tc.want) > 0.05 {
			t.Errorf("inverter(%gV) settled at %.3fV, want %.3fV", tc.in, got, tc.want)
		}
	}
}

func TestInverterChainInvertsAndDelays(t *testing.T) {
	// Through two inverters the signal is restored to the same polarity and
	// arrives strictly later.
	c := New(Params100nm)
	vdd := c.VDDNode()
	in := c.Node("in")
	c.V(in, Step(0, Params100nm.VDD, 50, 10))
	out, nodes := c.InverterChain(vdd, in, 2, 1, "ch")
	c.FanoutLoad(vdd, out, 4, 1)
	res := c.Simulate(400, 0.05)

	half := Params100nm.VDD / 2
	tIn, ok := res.CrossTime(in, half, true, 0)
	if !ok {
		t.Fatal("input never rose")
	}
	tMid, ok := res.CrossTime(nodes[0], half, false, tIn)
	if !ok {
		t.Fatal("first stage never fell")
	}
	tOut, ok := res.CrossTime(out, half, true, tMid)
	if !ok {
		t.Fatal("second stage never rose")
	}
	if !(tIn < tMid && tMid < tOut) {
		t.Errorf("causality violated: in %.2f, mid %.2f, out %.2f", tIn, tMid, tOut)
	}
}

func TestNANDTruthTable(t *testing.T) {
	vddV := Params100nm.VDD
	cases := []struct {
		a, b float64
		want float64
	}{
		{0, 0, vddV},
		{0, vddV, vddV},
		{vddV, 0, vddV},
		{vddV, vddV, 0},
	}
	for _, tc := range cases {
		c := New(Params100nm)
		vdd := c.VDDNode()
		a := c.Node("a")
		b := c.Node("b")
		out := c.Node("out")
		c.V(a, DC(tc.a))
		c.V(b, DC(tc.b))
		c.NAND(vdd, out, []Node{a, b}, 1)
		res := c.Simulate(500, 0.1)
		if got := res.FinalVoltage(out); math.Abs(got-tc.want) > 0.08 {
			t.Errorf("NAND(%g,%g) = %.3f, want %.3f", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestPWLWaveform(t *testing.T) {
	w := PWL{{0, 0}, {10, 1}, {20, 1}, {30, 0}}
	cases := []struct{ t, want float64 }{
		{-5, 0}, {0, 0}, {5, 0.5}, {10, 1}, {15, 1}, {25, 0.5}, {40, 0},
	}
	for _, tc := range cases {
		if got := w.At(tc.t); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("PWL.At(%g) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestClockWaveformShape(t *testing.T) {
	spec := ClockSpec{Period: 100, High: 40, Edge: 5, VDD: 1.2, Start: 20}
	w := Clock(spec, 400)
	// High in the middle of each pulse, low between pulses.
	for _, tc := range []struct{ t, want float64 }{
		{10, 0}, {45, 1.2}, {80, 0}, {145, 1.2}, {180, 0},
	} {
		if got := w.At(tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("clock at %gps = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestSolverAgainstKnownSystem(t *testing.T) {
	// 3x3 with known solution x = (1, -2, 3).
	a := [][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	}
	b := []float64{2*1 + 1*-2 - 1*3, -3*1 - 1*-2 + 2*3, -2*1 + 1*-2 + 2*3}
	x := make([]float64, 3)
	if err := solveInPlace(a, b, x); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -2, 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-9 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolverPropertyRandomSPD(t *testing.T) {
	// Property: for random diagonally dominant systems, solving then
	// multiplying back recovers the RHS.
	f := func(seed int64) bool {
		rng := seed
		next := func() float64 {
			rng = rng*6364136223846793005 + 1442695040888963407
			return float64(rng%1000) / 500.0
		}
		const n = 5
		a := make([][]float64, n)
		orig := make([][]float64, n)
		for i := range a {
			a[i] = make([]float64, n)
			orig[i] = make([]float64, n)
			for j := range a[i] {
				a[i][j] = next()
			}
			a[i][i] += 10 // dominance
			copy(orig[i], a[i])
		}
		b := make([]float64, n)
		origB := make([]float64, n)
		for i := range b {
			b[i] = next()
		}
		copy(origB, b)
		x := make([]float64, n)
		if err := solveInPlace(a, b, x); err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += orig[i][j] * x[j]
			}
			if math.Abs(sum-origB[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSolverSingular(t *testing.T) {
	a := [][]float64{{1, 1}, {1, 1}}
	b := []float64{1, 2}
	x := make([]float64, 2)
	if err := solveInPlace(a, b, x); err == nil {
		t.Error("expected error for singular system")
	}
}

func TestPanicsOnBadDevices(t *testing.T) {
	c := New(Params100nm)
	n := c.Node("n")
	for name, fn := range map[string]func(){
		"zero R":       func() { c.R(n, Gnd, 0) },
		"zero C":       func() { c.C(n, Gnd, 0) },
		"zero width":   func() { c.NMOS(n, n, Gnd, 0) },
		"src on gnd":   func() { c.V(Gnd, DC(1)) },
		"bad timestep": func() { c.Simulate(1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
