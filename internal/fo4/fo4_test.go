package fo4

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFO4PsAtKnownNodes(t *testing.T) {
	cases := []struct {
		tech Tech
		want float64
	}{
		{Tech100nm, 36},
		{Tech180nm, 64.8},
		{Tech130nm, 46.8},
		{Tech1000nm, 360},
	}
	for _, c := range cases {
		if got := c.tech.FO4Ps(); !almost(got, c.want, 1e-9) {
			t.Errorf("FO4Ps(%vnm) = %v, want %v", c.tech.Nanometers, got, c.want)
		}
	}
}

func TestPsFO4RoundTrip(t *testing.T) {
	f := func(ps float64) bool {
		ps = math.Abs(ps)
		if ps > 1e9 || ps < 1e-9 {
			return true
		}
		got := Tech100nm.FO4ToPs(Tech100nm.PsToFO4(ps))
		return almost(got, ps, ps*1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPeriodFO4HistoricalEndpoints(t *testing.T) {
	// Figure 1: the 1990 33 MHz part at 1000nm has a period of ~84 FO4.
	first := IntelHistory[0]
	if got := first.PeriodFO4(); !almost(got, 84.2, 0.5) {
		t.Errorf("1990 period = %.2f FO4, want ~84", got)
	}
	// The 2002 2 GHz part at 130nm is near 11 FO4 — within a factor of ~1.4
	// of the paper's 7.8 FO4 optimum line.
	last := IntelHistory[len(IntelHistory)-1]
	if got := last.PeriodFO4(); got < 9 || got > 13 {
		t.Errorf("2002 period = %.2f FO4, want ~10.7", got)
	}
}

func TestHistoryMonotonicity(t *testing.T) {
	// Clock periods in FO4 shrink monotonically across the seven
	// generations; total frequency gain is ~60x.
	for i := 1; i < len(IntelHistory); i++ {
		if IntelHistory[i].PeriodFO4() >= IntelHistory[i-1].PeriodFO4() {
			t.Errorf("period in FO4 did not shrink from %s to %s",
				IntelHistory[i-1].Name, IntelHistory[i].Name)
		}
	}
	gain := IntelHistory[len(IntelHistory)-1].FreqHz / IntelHistory[0].FreqHz
	if gain < 55 || gain > 65 {
		t.Errorf("frequency gain = %.1fx, want ~60x", gain)
	}
}

func TestPaperOverheadTotal(t *testing.T) {
	if got := PaperOverhead.Total(); !almost(got, 1.8, 1e-12) {
		t.Errorf("PaperOverhead.Total() = %v, want 1.8", got)
	}
}

func TestClockPeriodAndFrequency(t *testing.T) {
	c := Clock{Useful: 6, Overhead: PaperOverhead}
	if got := c.PeriodFO4(); !almost(got, 7.8, 1e-12) {
		t.Errorf("PeriodFO4 = %v, want 7.8", got)
	}
	// §7: 7.8 FO4 at 100nm corresponds to ~3.6 GHz.
	if got := c.FrequencyHz(Tech100nm); !almost(got, 3.56e9, 0.05e9) {
		t.Errorf("FrequencyHz = %v, want ~3.56 GHz", got)
	}
	// Vector optimum: 4 + 1.8 = 5.8 FO4 → ~4.8 GHz at 100nm.
	v := Clock{Useful: 4, Overhead: PaperOverhead}
	if got := v.FrequencyHz(Tech100nm); !almost(got, 4.79e9, 0.06e9) {
		t.Errorf("vector FrequencyHz = %v, want ~4.8 GHz", got)
	}
}

func TestAlpha21264UsefulFO4(t *testing.T) {
	// 1250 ps / 64.8 ps = 19.3 FO4 period; 90% useful = 17.4 FO4, the value
	// in the last row of Table 3.
	if got := Alpha21264UsefulFO4(); !almost(got, 17.4, 0.05) {
		t.Errorf("Alpha21264UsefulFO4 = %v, want ~17.4", got)
	}
}

func TestCyclesForWorkTable3FunctionalUnits(t *testing.T) {
	// Table 3's functional-unit grid follows exactly from
	// ceil(alphaCycles × 17.4 / t_useful). Spot-check every operation class
	// at several clocks against the published values.
	w := Alpha21264UsefulFO4()
	type row struct {
		alphaCycles int
		want        map[float64]int // t_useful → cycles
	}
	rows := map[string]row{
		"intAdd":  {1, map[float64]int{2: 9, 3: 6, 4: 5, 5: 4, 6: 3, 8: 3, 9: 2, 15: 2}},
		"intMult": {7, map[float64]int{2: 61, 3: 41, 4: 31, 5: 25, 6: 21, 7: 18, 8: 16, 12: 11, 16: 8}},
		"fpAdd":   {4, map[float64]int{2: 35, 3: 24, 4: 18, 5: 14, 6: 12, 8: 9, 10: 7, 16: 5}},
		"fpDiv":   {12, map[float64]int{2: 105, 3: 70, 4: 53, 5: 42, 6: 35, 8: 27, 12: 18, 16: 14}},
		"fpSqrt":  {18, map[float64]int{2: 157, 3: 105, 4: 79, 5: 63, 6: 53, 8: 40, 12: 27, 16: 20}},
	}
	for name, r := range rows {
		for tu, want := range r.want {
			c := Clock{Useful: tu, Overhead: PaperOverhead}
			if got := c.CyclesForWork(float64(r.alphaCycles) * w); got != want {
				t.Errorf("%s at t_useful=%v: got %d cycles, want %d", name, tu, got, want)
			}
		}
	}
}

func TestCyclesForWorkProperties(t *testing.T) {
	// Property: cycles is monotonically non-increasing in t_useful and
	// non-decreasing in work, and always ≥ 1.
	f := func(workRaw, t1Raw, t2Raw float64) bool {
		work := math.Mod(math.Abs(workRaw), 500)
		t1 := 2 + math.Mod(math.Abs(t1Raw), 14)
		t2 := 2 + math.Mod(math.Abs(t2Raw), 14)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		c1 := Clock{Useful: t1}.CyclesForWork(work)
		c2 := Clock{Useful: t2}.CyclesForWork(work)
		return c1 >= c2 && c2 >= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclesForWorkPanicsOnZeroUseful(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for Useful=0")
		}
	}()
	Clock{Useful: 0}.CyclesForWork(10)
}

func TestOptimalLineNearCurrentDesigns(t *testing.T) {
	// Figure 1's observation: the 2002-era clock period already approaches
	// the 7.8 FO4 optimum (within ~2x, versus ~11x for 1990).
	last := IntelHistory[len(IntelHistory)-1].PeriodFO4()
	if ratio := last / OptimalClockPeriodFO4; ratio > 2 {
		t.Errorf("2002 period is %.1fx the optimum; expected < 2x", ratio)
	}
}
