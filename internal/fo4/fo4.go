// Package fo4 models the fan-out-of-four (FO4) delay metric and the
// technology-scaling arithmetic used throughout the paper.
//
// One FO4 is the delay of an inverter driving four copies of itself. Delays
// expressed in FO4 are, to first order, independent of fabrication
// technology, which is why the paper states all its results in FO4. The
// paper's conversion rule (following Ho, Mai and Horowitz, "The future of
// wires") is that one FO4 corresponds to roughly 360 picoseconds times the
// transistor's drawn gate length in microns.
package fo4

import (
	"fmt"
	"math"
)

// PsPerMicron is the paper's FO4 conversion constant: one FO4 delay equals
// PsPerMicron picoseconds multiplied by the drawn gate length in microns.
const PsPerMicron = 360.0

// Tech describes a fabrication technology by its drawn gate length.
type Tech struct {
	// Nanometers is the drawn gate length (not the effective gate length;
	// the paper is explicit that feature sizes refer to drawn lengths).
	Nanometers float64
}

// Common technology nodes referenced in the paper.
var (
	Tech1000nm = Tech{1000}
	Tech800nm  = Tech{800}
	Tech600nm  = Tech{600}
	Tech350nm  = Tech{350}
	Tech250nm  = Tech{250}
	Tech180nm  = Tech{180} // Alpha 21264, Pentium 4 era
	Tech130nm  = Tech{130}
	Tech100nm  = Tech{100} // the paper's design point
)

// FO4Ps returns the duration of one FO4 delay in picoseconds at this
// technology: 360 ps × drawn gate length in microns. At 100nm one FO4 is
// 36 ps, which is also the paper's measured latch overhead.
func (t Tech) FO4Ps() float64 {
	return PsPerMicron * t.Nanometers / 1000.0
}

// PsToFO4 converts a delay in picoseconds to FO4 units at this technology.
func (t Tech) PsToFO4(ps float64) float64 {
	return ps / t.FO4Ps()
}

// FO4ToPs converts a delay in FO4 units to picoseconds at this technology.
func (t Tech) FO4ToPs(fo4 float64) float64 {
	return fo4 * t.FO4Ps()
}

// PeriodFO4 returns the clock period, in FO4, of a processor running at
// freqHz in this technology. This is the computation behind Figure 1.
func (t Tech) PeriodFO4(freqHz float64) float64 {
	periodPs := 1e12 / freqHz
	return t.PsToFO4(periodPs)
}

// FrequencyHz returns the clock frequency implied by a clock period of
// periodFO4 FO4 delays at this technology.
func (t Tech) FrequencyHz(periodFO4 float64) float64 {
	return 1e12 / t.FO4ToPs(periodFO4)
}

// Overhead is the per-cycle clock overhead that does no useful work,
// decomposed as in Table 1 of the paper. All fields are in FO4.
type Overhead struct {
	Latch  float64 // time for latches to sample and hold values
	Skew   float64 // clock skew between communicating latches
	Jitter float64 // cycle-to-cycle clock uncertainty
}

// PaperOverhead is Table 1: 1.0 FO4 of latch overhead (measured by the
// circuit experiments in internal/latch), 0.3 FO4 of skew and 0.5 FO4 of
// jitter (from Kurd et al.'s multi-domain clocking measurements at 180nm),
// totalling 1.8 FO4.
var PaperOverhead = Overhead{Latch: 1.0, Skew: 0.3, Jitter: 0.5}

// Total returns the summed overhead in FO4 (T_overhead in the paper).
func (o Overhead) Total() float64 { return o.Latch + o.Skew + o.Jitter }

// Clock is a clock design point: useful logic per stage plus overhead.
// The clock period is Useful + Overhead.Total().
type Clock struct {
	Useful   float64 // t_useful: FO4 of useful logic per pipeline stage
	Overhead Overhead
}

// PeriodFO4 returns the full clock period in FO4 (useful + overhead).
func (c Clock) PeriodFO4() float64 { return c.Useful + c.Overhead.Total() }

// PeriodPs returns the clock period in picoseconds at technology t.
func (c Clock) PeriodPs(t Tech) float64 { return t.FO4ToPs(c.PeriodFO4()) }

// FrequencyHz returns the clock frequency in hertz at technology t.
func (c Clock) FrequencyHz(t Tech) float64 { return 1e12 / c.PeriodPs(t) }

// CyclesForWork returns the number of clock cycles needed to perform an
// operation whose useful work is workFO4, following the paper's methodology:
// the structure or functional-unit delay is divided by the useful time per
// stage and rounded up to a whole number of cycles (a partially used stage
// still costs a full cycle). Every operation takes at least one cycle.
func (c Clock) CyclesForWork(workFO4 float64) int {
	if c.Useful <= 0 {
		panic("fo4: Clock.Useful must be positive")
	}
	n := int(math.Ceil(workFO4/c.Useful - 1e-9))
	if n < 1 {
		n = 1
	}
	return n
}

func (c Clock) String() string {
	return fmt.Sprintf("%.1f+%.1f FO4", c.Useful, c.Overhead.Total())
}

// Alpha21264 constants: the paper derives functional-unit work in FO4 from
// the Alpha 21264 (800 MHz at 180nm) by attributing 10% of its clock period
// to latch overhead.
const (
	// Alpha21264FreqHz is the 21264's clock frequency used by the paper.
	Alpha21264FreqHz = 800e6
	// Alpha21264LatchFraction is the fraction of the 21264 clock period the
	// paper attributes to latch overhead when deriving useful work.
	Alpha21264LatchFraction = 0.10
)

// Alpha21264UsefulFO4 returns the useful logic per stage of the Alpha 21264
// in FO4: its 1250 ps period at 180nm is 19.3 FO4, and removing the 10%
// latch overhead leaves about 17.4 FO4, the value in Table 3's last row.
func Alpha21264UsefulFO4() float64 {
	period := Tech180nm.PeriodFO4(Alpha21264FreqHz)
	return period * (1 - Alpha21264LatchFraction)
}

// Processor is one entry of Figure 1's historical dataset.
type Processor struct {
	Name   string
	Year   int
	Tech   Tech    // fabrication technology (drawn gate length)
	FreqHz float64 // nominal clock frequency
}

// PeriodFO4 returns the processor's clock period expressed in FO4.
func (p Processor) PeriodFO4() float64 { return p.Tech.PeriodFO4(p.FreqHz) }

// IntelHistory is the Figure 1 dataset: the last seven generations of Intel
// x86 processors by year of introduction, fabrication technology and clock
// frequency. Clock frequency improved by roughly a factor of 60 over the
// period; logic per stage fell from 84 FO4 to around 11 FO4.
var IntelHistory = []Processor{
	{"i486DX (33 MHz)", 1990, Tech1000nm, 33e6},
	{"i486DX2 (66 MHz)", 1992, Tech800nm, 66e6},
	{"Pentium (100 MHz)", 1994, Tech600nm, 100e6},
	{"Pentium Pro (200 MHz)", 1996, Tech350nm, 200e6},
	{"Pentium II (450 MHz)", 1998, Tech250nm, 450e6},
	{"Pentium III (1 GHz)", 2000, Tech180nm, 1e9},
	{"Pentium 4 (2 GHz)", 2002, Tech130nm, 2e9},
}

// OptimalClockPeriodFO4 is the paper's headline result: the clock period at
// the integer-benchmark optimum, 6 FO4 of useful logic plus 1.8 FO4 of
// overhead. The dashed line in Figure 1 sits at this value.
const OptimalClockPeriodFO4 = 7.8
