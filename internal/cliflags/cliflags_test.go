package cliflags

import (
	"strings"
	"testing"
)

func sim(n, workers int, seed uint64, bench string) *Sim {
	j := false
	return &Sim{N: &n, Seed: &seed, Workers: &workers, Bench: &bench, JSON: &j}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name    string
		s       *Sim
		wantErr string
	}{
		{"defaults", sim(40000, 0, 1, ""), ""},
		{"serial", sim(40000, 1, 1, ""), ""},
		{"bench filter", sim(40000, 0, 1, "gcc"), ""},
		{"bench filter case-insensitive", sim(40000, 0, 1, "GCC"), ""},
		{"zero n", sim(0, 0, 1, ""), "-n must be positive"},
		{"negative workers", sim(40000, -2, 1, ""), "-workers must be >= 0"},
		{"unknown bench", sim(40000, 0, 1, "no-such-spec"), "matches no SPEC 2000 benchmark"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := c.s.Options()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if o.Instructions != *c.s.N || o.Workers != *c.s.Workers ||
					o.Seed != *c.s.Seed || o.Bench != *c.s.Bench {
					t.Errorf("options %+v do not mirror flags", o)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

type textOnly struct{}

func (textOnly) Render() string { return "plain" }

func TestJSONFallbackWrapsText(t *testing.T) {
	raw, err := jsonFor(textOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"text": "plain"`) {
		t.Errorf("fallback JSON = %s", raw)
	}
}
