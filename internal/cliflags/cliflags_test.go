package cliflags

import (
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func sim(n, workers int, seed uint64, bench string) *Sim {
	j := false
	return &Sim{N: &n, Seed: &seed, Workers: &workers, Bench: &bench, JSON: &j}
}

func TestOptionsValidation(t *testing.T) {
	cases := []struct {
		name    string
		s       *Sim
		wantErr string
	}{
		{"defaults", sim(40000, 0, 1, ""), ""},
		{"serial", sim(40000, 1, 1, ""), ""},
		{"bench filter", sim(40000, 0, 1, "gcc"), ""},
		{"bench filter case-insensitive", sim(40000, 0, 1, "GCC"), ""},
		{"zero n", sim(0, 0, 1, ""), "-n must be positive"},
		{"negative workers", sim(40000, -2, 1, ""), "-workers must be >= 0"},
		{"unknown bench", sim(40000, 0, 1, "no-such-spec"), "matches no SPEC 2000 benchmark"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o, err := c.s.Options()
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if o.Instructions != *c.s.N || o.Workers != *c.s.Workers ||
					o.Seed != *c.s.Seed || o.Bench != *c.s.Bench {
					t.Errorf("options %+v do not mirror flags", o)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

type textOnly struct{}

func (textOnly) Render() string { return "plain" }

func TestJSONFallbackWrapsText(t *testing.T) {
	raw, err := jsonFor(textOnly{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"text": "plain"`) {
		t.Errorf("fallback JSON = %s", raw)
	}
}

func tel(verbose, quiet bool, manifest, cpu, mem, trc string) *Tel {
	return &Tel{
		Verbose:    &verbose,
		Quiet:      &quiet,
		Manifest:   &manifest,
		CPUProfile: &cpu,
		MemProfile: &mem,
		Trace:      &trc,
	}
}

func TestTelStartRejectsVerboseQuiet(t *testing.T) {
	_, err := tel(true, true, "", "", "", "").Start("x")
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v, want the -v/-quiet exclusivity error", err)
	}
}

func TestTelStartRejectsBadProfilePaths(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "missing", "p.out")
	cases := map[string]*Tel{
		"cpuprofile": tel(false, false, "", bad, "", ""),
		"trace":      tel(false, false, "", "", "", bad),
	}
	for name, tl := range cases {
		if _, err := tl.Start("x"); err == nil {
			t.Errorf("Start accepted unwritable -%s path", name)
		}
	}
}

func TestTelLifecycleEmitsValidManifest(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.json")
	run, err := tel(false, false, path, "", filepath.Join(dir, "mem.pprof"), "").Start("cliflags-test")
	if err != nil {
		t.Fatal(err)
	}
	run.SetConfig("instructions", 1234)
	end := run.Recorder().Study("probe")
	end()
	if err := run.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m obs.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("manifest does not parse: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("manifest invalid: %v", err)
	}
	if m.Command != "cliflags-test" || len(m.Telemetry.Studies) != 1 {
		t.Errorf("manifest = command %q, %d studies", m.Command, len(m.Telemetry.Studies))
	}
}

func TestOptionsRejectsBenchWithOnlySpaces(t *testing.T) {
	// A filter of whitespace matches no benchmark name and must be
	// rejected like any other unknown filter, not silently run nothing.
	_, err := sim(40000, 0, 1, "   ").Options()
	if err == nil || !strings.Contains(err.Error(), "matches no SPEC 2000 benchmark") {
		t.Errorf("err = %v, want no-match rejection", err)
	}
}

func TestSrvValidation(t *testing.T) {
	srvFlags := func(mutate func(*Srv)) *Srv {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		s := RegisterServeOn(fs)
		if err := fs.Parse(nil); err != nil {
			t.Fatal(err)
		}
		mutate(s)
		return s
	}
	cases := []struct {
		name    string
		mutate  func(*Srv)
		wantErr string
	}{
		{"defaults", func(s *Srv) {}, ""},
		{"port zero", func(s *Srv) { *s.Addr = ":0" }, ""},
		{"empty addr", func(s *Srv) { *s.Addr = "" }, "-addr must not be empty"},
		{"negative workers", func(s *Srv) { *s.Workers = -1 }, "-workers must be >= 0"},
		{"zero queue", func(s *Srv) { *s.Queue = 0 }, "-queue must be positive"},
		{"zero max points", func(s *Srv) { *s.MaxPoints = 0 }, "-max-points must be positive"},
		{"zero max instructions", func(s *Srv) { *s.MaxInstructions = 0 }, "-max-instructions must be positive"},
		{"zero cache", func(s *Srv) { *s.Cache = 0 }, "-cache must be positive"},
		{"unbounded cache", func(s *Srv) { *s.Cache = -1 }, ""},
		{"zero drain timeout", func(s *Srv) { *s.DrainTimeout = 0 }, "-drain-timeout must be positive"},
		{"store directory", func(s *Srv) { *s.Store = "/tmp/results" }, ""},
		{"zero segment bytes", func(s *Srv) { *s.SegmentBytes = 0 }, "-segment-bytes must be positive"},
		{"negative segment bytes", func(s *Srv) { *s.SegmentBytes = -1 }, "-segment-bytes must be positive"},
		{"compaction disabled", func(s *Srv) { *s.CompactInterval = 0 }, ""},
		{"negative compact interval", func(s *Srv) { *s.CompactInterval = -time.Second }, "-compact-interval must be >= 0"},
		{"zero retry after", func(s *Srv) { *s.RetryAfter = 0 }, "-retry-after must be positive"},
		{"negative retry after", func(s *Srv) { *s.RetryAfter = -2 }, "-retry-after must be positive"},
		{"metrics disabled", func(s *Srv) { *s.Metrics = false }, ""},
		{"slow request threshold", func(s *Srv) { *s.SlowRequest = 500 * time.Millisecond }, ""},
		{"slow request disabled", func(s *Srv) { *s.SlowRequest = 0 }, ""},
		{"negative slow request", func(s *Srv) { *s.SlowRequest = -time.Second }, "-slow-request must be >= 0"},
		{"debug addr loopback", func(s *Srv) { *s.DebugAddr = "127.0.0.1:6060" }, ""},
		{"debug addr free port", func(s *Srv) { *s.DebugAddr = "localhost:0" }, ""},
		{"debug addr no port", func(s *Srv) { *s.DebugAddr = "localhost" }, "-debug-addr"},
		{"debug addr garbage", func(s *Srv) { *s.DebugAddr = "not an addr" }, "-debug-addr"},
		{"debug addr stray colon", func(s *Srv) { *s.DebugAddr = "1.2.3.4:70000:x" }, "-debug-addr"},
	}
	for _, c := range cases {
		err := srvFlags(c.mutate).Validate()
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.wantErr)
		}
	}
}

func TestSrvBatchFlag(t *testing.T) {
	// -batch is a plain bool flag: it defaults on, parses both
	// spellings, and a malformed value fails at Parse — which the
	// daemons' ExitOnError flag set turns into exit status 2.
	parse := func(args ...string) (*Srv, error) {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := RegisterServeOn(fs)
		return s, fs.Parse(args)
	}
	if s, err := parse(); err != nil || !*s.Batch {
		t.Errorf("defaults: batch = %v, err = %v; want true, nil", *s.Batch, err)
	}
	if s, err := parse("-batch=false"); err != nil || *s.Batch {
		t.Errorf("-batch=false: batch = %v, err = %v; want false, nil", *s.Batch, err)
	}
	if _, err := parse("-batch=nope"); err == nil {
		t.Error("-batch=nope parsed cleanly; want a parse error (exit 2 in the daemons)")
	}
}
