// Package cliflags centralizes the flag surface shared by the cmd/
// binaries. Every simulation-driven command accepts the same -n, -seed,
// -workers, -bench and -json flags with identical semantics, plus the
// telemetry surface (-v, -quiet, -manifest, -cpuprofile, -memprofile,
// -trace) from internal/obs; commands add their own extras (like
// pipesweep's -fig) on top.
package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/obs"
)

// Sim holds the simulation flags every study binary accepts.
type Sim struct {
	N       *int
	Seed    *uint64
	Workers *int
	Bench   *string
	JSON    *bool
}

// Register declares the shared simulation flags on the default flag set;
// call it before flag.Parse. defaultN sets the -n default, which differs
// between the full evaluation binaries and the characterization tools.
func Register(defaultN int) *Sim {
	return RegisterOn(flag.CommandLine, defaultN)
}

// RegisterOn declares the shared simulation flags on an explicit flag
// set. The binaries go through Register; tests and the fuzz harness use
// a private flag set so repeated parses never collide on the global
// one.
func RegisterOn(fs *flag.FlagSet, defaultN int) *Sim {
	return &Sim{
		N:       fs.Int("n", defaultN, "instructions per benchmark"),
		Seed:    fs.Uint64("seed", 1, "trace generation seed"),
		Workers: fs.Int("workers", 0, "simulation worker pool size (0 = all CPUs, 1 = serial)"),
		Bench:   fs.String("bench", "", "only run benchmarks whose names contain this substring"),
		JSON:    fs.Bool("json", false, "emit machine-readable JSON instead of text"),
	}
}

// JSONFlag declares just the -json flag, for binaries (latchsim,
// cactigen) whose experiments take no simulation parameters.
func JSONFlag() *bool {
	return flag.Bool("json", false, "emit machine-readable JSON instead of text")
}

// Options validates the parsed flags and converts them to experiment
// options. It is separate from MustOptions so the validation is testable.
func (s *Sim) Options() (experiments.Options, error) {
	var o experiments.Options
	if *s.N <= 0 {
		return o, fmt.Errorf("-n must be positive, got %d", *s.N)
	}
	if *s.Workers < 0 {
		return o, fmt.Errorf("-workers must be >= 0, got %d", *s.Workers)
	}
	if *s.Bench != "" && len(experiments.MatchBenchmarks(*s.Bench)) == 0 {
		return o, fmt.Errorf("-bench %q matches no SPEC 2000 benchmark", *s.Bench)
	}
	return experiments.Options{
		Instructions: *s.N,
		Seed:         *s.Seed,
		Workers:      *s.Workers,
		Bench:        *s.Bench,
	}, nil
}

// MustOptions is Options with the conventional exit-on-error behavior.
func (s *Sim) MustOptions() experiments.Options {
	o, err := s.Options()
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	return o
}

// Srv holds the serving flags of cmd/sweepd: listener address, admission
// bounds and the graceful-drain budget, alongside the same -workers knob
// the study binaries use for their simulation pools.
type Srv struct {
	Addr            *string
	Workers         *int
	Queue           *int
	MaxPoints       *int
	MaxInstructions *int
	Cache           *int
	DrainTimeout    *time.Duration

	// Persistence knobs: Store enables the durable result store
	// (internal/store) in the named directory, SegmentBytes rotates its
	// append-only log segments, CompactInterval paces the compaction
	// coordinator (0 disables it). RetryAfter is the Retry-After header
	// value on 429/503, so client backoff is operator-tunable.
	Store           *string
	SegmentBytes    *int64
	CompactInterval *time.Duration
	RetryAfter      *int

	// Batch gates the scheduler's per-benchmark batch dispatch;
	// -batch=false falls back to the flat per-point path (the responses
	// are byte-identical — the flag is an A/B and escape hatch).
	Batch *bool

	// Observability knobs: Metrics gates the /metrics exposition
	// endpoint, SlowRequest is the latency past which a request logs at
	// Warn (0 disables), DebugAddr binds a second, private listener
	// serving /debug/pprof so a live daemon can be profiled without
	// restarting (empty = no debug listener).
	Metrics     *bool
	SlowRequest *time.Duration
	DebugAddr   *string
}

// RegisterServe declares the serving flags on the default flag set.
func RegisterServe() *Srv {
	return RegisterServeOn(flag.CommandLine)
}

// RegisterServeOn declares the serving flags on an explicit flag set,
// for tests that parse repeatedly.
func RegisterServeOn(fs *flag.FlagSet) *Srv {
	return &Srv{
		Addr:            fs.String("addr", "127.0.0.1:8080", "listen address (host:port; :0 picks a free port)"),
		Workers:         fs.Int("workers", 0, "simulation worker pool size (0 = all CPUs, 1 = serial)"),
		Queue:           fs.Int("queue", 4096, "max queued sweep points before requests get 429"),
		MaxPoints:       fs.Int("max-points", 1024, "max distinct points one request may expand to"),
		MaxInstructions: fs.Int("max-instructions", 1_000_000, "max instructions per trace a request may ask for"),
		Cache:           fs.Int("cache", 16384, "max cached point results before LRU eviction (-1 = unbounded)"),
		DrainTimeout:    fs.Duration("drain-timeout", 30*time.Second, "how long graceful shutdown waits for in-flight streams"),
		Store:           fs.String("store", "", "directory for the durable result store (empty = memory-only); restarts warm-start from it and enable GET /results delta sync"),
		SegmentBytes:    fs.Int64("segment-bytes", 8<<20, "rotate the store's append-only log segments at this size"),
		CompactInterval: fs.Duration("compact-interval", time.Minute, "how often the store's compaction coordinator retires superseded segments (0 = never)"),
		RetryAfter:      fs.Int("retry-after", 1, "Retry-After seconds sent with 429 (queue full) and 503 (draining) responses"),
		Batch:           fs.Bool("batch", true, "batch queued points that share a benchmark trace through one simulation pass (-batch=false = per-point)"),
		Metrics:         fs.Bool("metrics", true, "serve Prometheus text exposition on GET /metrics (-metrics=false disables)"),
		SlowRequest:     fs.Duration("slow-request", 0, "log requests slower than this at Warn and count them (0 = disabled)"),
		DebugAddr:       fs.String("debug-addr", "", "bind a second listener serving /debug/pprof on this host:port (empty = disabled; keep it private)"),
	}
}

// Validate rejects nonsensical serving flags before the daemon binds.
func (s *Srv) Validate() error {
	if *s.Addr == "" {
		return fmt.Errorf("-addr must not be empty")
	}
	if *s.Workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", *s.Workers)
	}
	if *s.Queue <= 0 {
		return fmt.Errorf("-queue must be positive, got %d", *s.Queue)
	}
	if *s.MaxPoints <= 0 {
		return fmt.Errorf("-max-points must be positive, got %d", *s.MaxPoints)
	}
	if *s.MaxInstructions <= 0 {
		return fmt.Errorf("-max-instructions must be positive, got %d", *s.MaxInstructions)
	}
	if *s.Cache <= 0 && *s.Cache != -1 {
		return fmt.Errorf("-cache must be positive or -1 for unbounded, got %d", *s.Cache)
	}
	if *s.DrainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", *s.DrainTimeout)
	}
	if *s.SegmentBytes <= 0 {
		return fmt.Errorf("-segment-bytes must be positive, got %d", *s.SegmentBytes)
	}
	if *s.CompactInterval < 0 {
		return fmt.Errorf("-compact-interval must be >= 0 (0 disables compaction), got %v", *s.CompactInterval)
	}
	if *s.RetryAfter <= 0 {
		return fmt.Errorf("-retry-after must be positive, got %d", *s.RetryAfter)
	}
	if *s.SlowRequest < 0 {
		return fmt.Errorf("-slow-request must be >= 0 (0 disables the slow log), got %v", *s.SlowRequest)
	}
	if *s.DebugAddr != "" {
		if _, _, err := net.SplitHostPort(*s.DebugAddr); err != nil {
			return fmt.Errorf("-debug-addr %q is not a host:port: %v", *s.DebugAddr, err)
		}
	}
	return nil
}

// MustValidate is Validate with the conventional exit-on-error behavior.
func (s *Srv) MustValidate() {
	if err := s.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
}

// Tel holds the telemetry flags every study binary accepts. The run log
// goes to stderr so it never mixes into the study output on stdout.
type Tel struct {
	Verbose    *bool
	Quiet      *bool
	Manifest   *string
	CPUProfile *string
	MemProfile *string
	Trace      *string
}

// RegisterTel declares the shared telemetry flags on the default flag
// set; call it before flag.Parse, alongside Register.
func RegisterTel() *Tel {
	return &Tel{
		Verbose:    flag.Bool("v", false, "verbose run log on stderr (per-study progress)"),
		Quiet:      flag.Bool("quiet", false, "log only errors on stderr"),
		Manifest:   flag.String("manifest", "", "write a run-manifest JSON (environment, config, timings, counters) to this path"),
		CPUProfile: flag.String("cpuprofile", "", "write a CPU profile to this path"),
		MemProfile: flag.String("memprofile", "", "write a heap profile to this path"),
		Trace:      flag.String("trace", "", "write a runtime execution trace to this path"),
	}
}

// Start validates the parsed telemetry flags and opens the run: logger
// configured, profiling started. The caller owns the returned run and
// must Close it after emitting its output.
func (t *Tel) Start(command string) (*obs.Run, error) {
	return obs.Start(obs.StartOptions{
		Command:    command,
		Verbose:    *t.Verbose,
		Quiet:      *t.Quiet,
		Manifest:   *t.Manifest,
		CPUProfile: *t.CPUProfile,
		MemProfile: *t.MemProfile,
		Trace:      *t.Trace,
	})
}

// MustStart is Start with the conventional exit-on-error behavior.
func (t *Tel) MustStart(command string) *obs.Run {
	run, err := t.Start(command)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(2)
	}
	return run
}

// MustRun is the one-call setup for the simulation binaries: validate the
// simulation flags, start telemetry, record the simulation configuration
// in the manifest, and hand the recorder to the experiment options.
func MustRun(command string, sim *Sim, tel *Tel) (experiments.Options, *obs.Run) {
	o := sim.MustOptions()
	run := tel.MustStart(command)
	run.SetConfig("instructions", o.Instructions)
	run.SetConfig("seed", o.Seed)
	run.SetConfig("workers", o.Workers)
	run.SetConfig("bench", o.Bench)
	run.SetConfig("json", *sim.JSON)
	o.Obs = run.Recorder()
	return o, run
}

// MustClose finishes a telemetry run — stops profiles, writes the heap
// profile and manifest — exiting nonzero if any of that fails.
func MustClose(run *obs.Run) {
	if err := run.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// Result is what every experiment driver returns: a text rendering in the
// shape the paper reports.
type Result interface{ Render() string }

// JSONer is implemented by results that have a structured export.
type JSONer interface{ JSON() ([]byte, error) }

// Emit prints each result in the selected format. Text results are
// blank-line separated, as the binaries always printed them. In JSON mode
// each result prints as one indented object (a JSON-lines-style stream);
// results without a structured export fall back to their text rendering
// wrapped in {"text": ...}.
func Emit(asJSON bool, rs ...Result) {
	for i, r := range rs {
		if !asJSON {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(r.Render())
			continue
		}
		raw, err := jsonFor(r)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("%s\n", raw)
	}
}

func jsonFor(r Result) ([]byte, error) {
	if j, ok := r.(JSONer); ok {
		return j.JSON()
	}
	return json.MarshalIndent(struct {
		Text string `json:"text"`
	}{r.Render()}, "", "  ")
}
