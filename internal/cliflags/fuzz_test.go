package cliflags

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// FuzzSimFlags drives the shared flag surface — the external input
// every study binary parses first — through arbitrary argument
// vectors. Parsing may reject, but it must never panic, and an
// accepted parse must yield options that honor the documented
// invariants.
func FuzzSimFlags(f *testing.F) {
	for _, seed := range []string{
		"",
		"-n 1000 -seed 7 -workers 2 -bench gcc -json",
		"-n 0",
		"-n -5",
		"-workers -1",
		"-bench nosuchbenchmark",
		"-seed 18446744073709551615",
		"-n 2147483647 -workers 64 -bench mesa",
		"-json -json",
		"--n=10 --seed=0x10",
		"-n", // missing value
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		s := RegisterOn(fs, 10000)
		if err := fs.Parse(strings.Fields(input)); err != nil {
			return // rejected by the flag package: fine
		}
		o, err := s.Options()
		if err != nil {
			if err.Error() == "" {
				t.Error("Options rejected the flags with an empty message")
			}
			return
		}
		if o.Instructions <= 0 {
			t.Errorf("accepted options carry non-positive Instructions %d (input %q)", o.Instructions, input)
		}
		if o.Workers < 0 {
			t.Errorf("accepted options carry negative Workers %d (input %q)", o.Workers, input)
		}
	})
}
