// Quickstart: build the paper's baseline machine, resolve it at the
// optimal clock (6 FO4 useful + 1.8 FO4 overhead), run one synthetic SPEC
// 2000 benchmark through the out-of-order pipeline simulator and print its
// IPC and BIPS.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	prof, ok := repro.BenchmarkByName("176.gcc")
	if !ok {
		log.Fatal("benchmark 176.gcc not found")
	}
	tr := prof.Generate(100000, 1)

	machine := repro.Alpha21264()
	clock := repro.Clock{Useful: 6, Overhead: repro.PaperOverhead}
	timing := machine.Resolve(clock)

	stats := repro.Simulate(repro.SimParams{
		Machine: machine,
		Timing:  timing,
		Warmup:  20000,
	}, tr)

	freq := clock.FrequencyHz(repro.Tech100nm)
	fmt.Printf("machine: %s at %.2f GHz (clock period %.1f FO4 at 100nm)\n",
		machine.Name, freq/1e9, clock.PeriodFO4())
	fmt.Printf("benchmark: %s (%s)\n", tr.Name, tr.Group)
	fmt.Printf("latencies: DL1 %d, L2 %d, memory %d, int-alu %d, window %d cycles\n",
		timing.DL1, timing.L2, timing.Mem, timing.Exec[0], timing.Window)
	fmt.Printf("IPC  = %.3f\n", stats.IPC)
	fmt.Printf("BIPS = %.3f\n", stats.IPC*freq/1e9)
	fmt.Printf("branch mispredict rate = %.1f%%\n",
		100*float64(stats.BranchMispredict)/float64(stats.BranchLookups))
}
