// Cray1s: the Section 4.2 what-if — a modern in-order superscalar wired to
// a Cray-1S-style memory system (no caches; every access pays a flat
// 12-cycle memory, fixed in absolute time). With the memory system as the
// bottleneck, deeper pipelining cannot buy performance and the optimal
// pipeline is much shallower than the cached machine's.
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	n := flag.Int("n", 60000, "instructions per benchmark")
	flag.Parse()

	cfg := repro.SweepConfig{
		Machine:      repro.Alpha21264(),
		Overhead:     repro.PaperOverhead,
		Instructions: *n,
	}

	cray := repro.Cray1SComparison(cfg)

	cached := repro.DepthSweep(repro.SweepConfig{
		Machine:      repro.InOrder7Stage(),
		Overhead:     repro.PaperOverhead,
		Benchmarks:   repro.BenchmarksByGroup(repro.Integer),
		Instructions: *n,
	})

	fmt.Printf("%-9s %14s %14s\n", "t_useful", "Cray-1S memory", "cached machine")
	for i, p := range cray.Points {
		fmt.Printf("%7.0f   %14.3f %14.3f\n", p.Useful,
			p.GroupBIPS[repro.Integer], cached.Points[i].GroupBIPS[repro.Integer])
	}
	fmt.Printf("\nCray-memory optimum: %.0f FO4; cached in-order optimum: %.0f FO4\n",
		cray.NearOptimalUseful(repro.Integer, 0.02),
		cached.NearOptimalUseful(repro.Integer, 0.02))
	fmt.Println("a memory-bottlenecked machine gains nothing from a faster clock,")
	fmt.Println("which is why the Cray-1S era favoured much shallower pipelines.")
}
