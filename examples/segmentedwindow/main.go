// Segmentedwindow: compare the Section 5 issue-window designs on the
// Alpha 21264 at its own latencies — a conventional single-cycle window, a
// naively pipelined window (no back-to-back dependent issue), the
// segmented-wakeup window at several depths, and the Figure 12 partitioned
// selection scheme.
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	n := flag.Int("n", 60000, "instructions per benchmark")
	flag.Parse()

	cfg := repro.SweepConfig{
		Machine:      repro.Alpha21264(),
		Overhead:     repro.PaperOverhead,
		Instructions: *n,
	}

	fmt.Println("Segmented wakeup (32-entry window, Alpha 21264 latencies):")
	fmt.Printf("%-7s %12s %12s\n", "stages", "rel int IPC", "rel FP IPC")
	pts := repro.SegmentedWindowSweep(cfg, 10, false)
	for _, p := range pts {
		fp := (p.RelativeIPC[repro.VectorFP] + p.RelativeIPC[repro.NonVectorFP]) / 2
		fmt.Printf("%5d   %12.3f %12.3f\n", p.Stages, p.RelativeIPC[repro.Integer], fp)
	}

	naive := repro.SegmentedWindowSweep(cfg, 4, true)
	fmt.Printf("\nnaive 4-stage pipelining (no back-to-back issue): %.3f relative IPC\n",
		naive[3].RelativeIPC[repro.Integer])

	sel := repro.SegmentedSelect(cfg)
	fmt.Printf("partitioned selection (4 stages, fan-in 16, pre-select 5/2/1):\n")
	fmt.Printf("  integer %.3f, vector FP %.3f, non-vector FP %.3f relative IPC\n",
		sel.RelativeIPC[repro.Integer], sel.RelativeIPC[repro.VectorFP],
		sel.RelativeIPC[repro.NonVectorFP])
}
