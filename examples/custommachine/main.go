// Custommachine: use the library the way a microarchitect would — define
// a hypothetical machine (wider issue, bigger window, bigger caches than
// the Alpha 21264), validate it, and ask where ITS optimal pipeline depth
// lies. Bigger structures are slower through the cacti timing model, so
// the answer is not obvious: extra capacity fights the clock.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	wide := repro.Alpha21264()
	wide.Name = "hypothetical-8wide"
	wide.FetchWidth = 8
	wide.IntIssue = 8
	wide.FPIssue = 4
	wide.IntWindow = 64
	wide.FPWindow = 48
	wide.ROB = 512
	wide.Structures.DL1.CapacityBytes = 128 << 10
	wide.Structures.Window.Entries = 112
	wide.Structures.Window.BroadcastPorts = 8
	if err := wide.Validate(); err != nil {
		log.Fatal(err)
	}

	base := repro.Alpha21264()
	for _, m := range []repro.Machine{base, wide} {
		sweep := repro.DepthSweep(repro.SweepConfig{
			Machine:      m,
			Overhead:     repro.PaperOverhead,
			Benchmarks:   repro.BenchmarksByGroup(repro.Integer),
			UsefulGrid:   []float64{3, 4, 5, 6, 7, 8, 10, 12},
			Instructions: 40000,
		})
		opt := sweep.NearOptimalUseful(repro.Integer, 0.02)
		clk := repro.Clock{Useful: opt, Overhead: repro.PaperOverhead}
		var peak float64
		for _, p := range sweep.Points {
			if b := p.GroupBIPS[repro.Integer]; b > peak {
				peak = b
			}
		}
		// A wider machine's issue window is slower (cacti), so its Table 3
		// latencies differ; print the window latency at the optimum too.
		timing := m.Resolve(clk)
		fmt.Printf("%-20s optimum %2.0f FO4 (%.2f GHz), peak %.2f BIPS, window %d cycles\n",
			m.Name, opt, clk.FrequencyHz(repro.Tech100nm)/1e9, peak, timing.Window)
	}
	fmt.Println("\ncapacity helps IPC but slows the structures: the optimal depth is a property")
	fmt.Println("of the whole design, which is the paper's point about balancing Fo4 budgets.")
}
