// Depthsweep: reproduce the paper's central experiment on a chosen
// benchmark group — sweep the useful logic per pipeline stage from 2 to 16
// FO4, print the billions-of-instructions-per-second curve, and locate the
// optimum. With the integer group this reproduces the headline result:
// the best clock has ~6 FO4 of useful logic (a 7.8 FO4 period).
package main

import (
	"flag"
	"fmt"

	"repro"
)

func main() {
	group := flag.String("group", "integer", "benchmark group: integer, vector or nonvector")
	n := flag.Int("n", 60000, "instructions per benchmark")
	flag.Parse()

	var g repro.Group
	switch *group {
	case "integer":
		g = repro.Integer
	case "vector":
		g = repro.VectorFP
	case "nonvector":
		g = repro.NonVectorFP
	default:
		fmt.Println("unknown group; use integer, vector or nonvector")
		return
	}

	sweep := repro.DepthSweep(repro.SweepConfig{
		Machine:      repro.Alpha21264(),
		Overhead:     repro.PaperOverhead,
		Benchmarks:   repro.BenchmarksByGroup(g),
		Instructions: *n,
	})

	fmt.Printf("%-9s %9s %9s\n", "t_useful", "BIPS", "freq GHz")
	for _, p := range sweep.Points {
		fmt.Printf("%7.0f   %9.3f %9.2f\n", p.Useful, p.GroupBIPS[g], p.FreqHz/1e9)
	}
	opt := sweep.NearOptimalUseful(g, 0.02)
	clk := repro.Clock{Useful: opt, Overhead: repro.PaperOverhead}
	fmt.Printf("\noptimum: %.0f FO4 useful per stage → %.1f FO4 period → %.2f GHz at 100nm\n",
		opt, clk.PeriodFO4(), clk.FrequencyHz(repro.Tech100nm)/1e9)
}
