package repro_test

// Run-manifest support for the benchmark harness: `make bench-smoke`
// passes `-args -manifest <path>` so every recorded perf-trajectory run
// is self-describing — the manifest pins the Go version, GOMAXPROCS and
// wall time next to the benchmark numbers (see internal/obs).

import (
	"flag"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
)

var benchManifest = flag.String("manifest", "", "write a run-manifest JSON for this test/bench invocation to this path")

func TestMain(m *testing.M) {
	flag.Parse()
	var rec *obs.Recorder
	if *benchManifest != "" {
		// Only record when a manifest was asked for, so plain `go test`
		// timings stay hook-free.
		rec = obs.New(nil)
		benchOpts.Obs = rec
	}
	start := time.Now()
	code := m.Run()
	if *benchManifest != "" {
		man := obs.NewManifest("go-test-bench", map[string]any{
			"instructions": benchOpts.Instructions,
		}, time.Since(start), rec.Snapshot())
		if err := obs.WriteManifest(*benchManifest, man); err != nil {
			fmt.Fprintln(os.Stderr, "error writing bench manifest:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
